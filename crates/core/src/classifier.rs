//! ASdb's ML component: the two binary website classifiers (§4.1).
//!
//! "We introduce two binary classifiers trained to identify hosting
//! provider and ISP websites." Each is a full Figure 3 pipeline: scrape the
//! domain (root + keyword internal pages), translate to English, count-
//! vectorize, TF-IDF, SGD ensemble.

use asdb_model::{Domain, WorldSeed};
use asdb_taxonomy::naicslite::known;
use asdb_textml::pipeline::PipelineConfig;
use asdb_textml::TextPipeline;
use asdb_websim::scraper::{scrape, ScrapeConfig};
use asdb_websim::{Fetcher, Translator};
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// The two trained classifiers plus the shared scraping/translation stack.
#[derive(Debug, Clone)]
pub struct MlClassifiers {
    isp: TextPipeline,
    hosting: TextPipeline,
    scrape_config: ScrapeConfig,
    translator: Translator,
}

/// One domain's ML verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlVerdict {
    /// P(the site is an ISP's).
    pub p_isp: f32,
    /// P(the site is a hosting provider's).
    pub p_hosting: f32,
}

impl MlVerdict {
    /// Hard ISP verdict at 0.5.
    pub fn is_isp(&self) -> bool {
        self.p_isp > 0.5
    }

    /// Hard hosting verdict at 0.5.
    pub fn is_hosting(&self) -> bool {
        self.p_hosting > 0.5
    }

    /// Whether either detector fired.
    pub fn fired(&self) -> bool {
        self.is_isp() || self.is_hosting()
    }
}

impl MlClassifiers {
    /// Assemble the §4.1 training set from a world and train both
    /// classifiers: "a labeled training set of 225 ASes, of which 150 ASes
    /// are random and 75 ASes are sampled from D&B-labeled hosting
    /// providers to provide sufficient hosting-class balance" (Table 2).
    pub fn train(world: &World, seed: WorldSeed) -> MlClassifiers {
        let translator = Translator::new(
            world.config.web.translation_loss,
            seed.derive("asdb-translate"),
        );
        let scrape_config = ScrapeConfig::default();

        // 150 random ASes…
        let mut train_orgs: Vec<_> = world
            .sample_asns(150, "ml-train")
            .into_iter()
            .filter_map(|asn| world.org_of(asn))
            .collect();
        // …plus 75 hosting providers for class balance.
        let hosting_orgs: Vec<_> = world
            .orgs
            .iter()
            .filter(|o| o.category == known::hosting() && o.live_site)
            .take(75)
            .collect();
        train_orgs.extend(hosting_orgs);

        let mut docs: Vec<String> = Vec::new();
        let mut isp_labels: Vec<bool> = Vec::new();
        let mut hosting_labels: Vec<bool> = Vec::new();
        for org in train_orgs {
            let Some(domain) = &org.domain else { continue };
            let Ok(res) = scrape(&world.web, domain, &scrape_config) else {
                continue;
            };
            let text = translator.translate(&res.text);
            docs.push(text);
            let truth = org.truth();
            isp_labels.push(truth.layer2s().contains(&known::isp()));
            hosting_labels.push(truth.layer2s().contains(&known::hosting()));
        }
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let config = PipelineConfig::asdb_default();
        let mut cfg = config.clone();
        cfg.vectorizer.min_df = 2;
        // The two detectors share the corpus but nothing else: train them
        // on parallel threads. Each fit is deterministic in its own
        // derived seed, so the result is identical to sequential training.
        let (isp, hosting) = std::thread::scope(|s| {
            let isp_cfg = cfg.clone();
            let isp_handle = s.spawn(|| {
                TextPipeline::fit(&doc_refs, &isp_labels, isp_cfg, seed.derive("isp-clf"))
            });
            let hosting =
                TextPipeline::fit(&doc_refs, &hosting_labels, cfg, seed.derive("hosting-clf"));
            (
                isp_handle.join().expect("isp classifier training panicked"),
                hosting,
            )
        });
        MlClassifiers {
            isp,
            hosting,
            scrape_config,
            translator,
        }
    }

    /// Scrape + translate + classify one domain. `None` when the site is
    /// unreachable or yields no text.
    pub fn classify<F: Fetcher>(&self, web: &F, domain: &Domain) -> Option<MlVerdict> {
        let res = scrape(web, domain, &self.scrape_config).ok()?;
        if !res.is_substantive() {
            return None;
        }
        let text = self.translator.translate(&res.text);
        Some(MlVerdict {
            p_isp: self.isp.predict_proba(&text),
            p_hosting: self.hosting.predict_proba(&text),
        })
    }

    /// Classify pre-scraped, pre-translated text (used by benches to
    /// isolate inference cost).
    pub fn classify_text(&self, text: &str) -> MlVerdict {
        MlVerdict {
            p_isp: self.isp.predict_proba(text),
            p_hosting: self.hosting.predict_proba(text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_textml::Metrics;
    use asdb_worldgen::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::standard(WorldSeed::new(2021)))
    }

    #[test]
    fn classifiers_beat_chance_substantially() {
        let w = world();
        let ml = MlClassifiers::train(&w, WorldSeed::new(7));
        // Evaluate on a held-out random sample.
        let test = w.sample_asns(150, "ml-test");
        let mut isp_scores = Vec::new();
        let mut isp_truth = Vec::new();
        let mut host_scores = Vec::new();
        let mut host_truth = Vec::new();
        for asn in test {
            let org = w.org_of(asn).unwrap();
            let Some(domain) = &org.domain else { continue };
            let Some(v) = ml.classify(&w.web, domain) else {
                continue;
            };
            isp_scores.push(v.p_isp);
            isp_truth.push(org.truth().layer2s().contains(&known::isp()));
            host_scores.push(v.p_hosting);
            host_truth.push(org.truth().layer2s().contains(&known::hosting()));
        }
        assert!(isp_scores.len() > 80, "too few scorable sites");
        let isp_auc = Metrics::roc_auc(&isp_scores, &isp_truth);
        let host_auc = Metrics::roc_auc(&host_scores, &host_truth);
        // Paper: ISP AUC .94, hosting .80.
        assert!(isp_auc > 0.85, "ISP AUC = {isp_auc}");
        assert!(host_auc > 0.70, "hosting AUC = {host_auc}");
    }

    #[test]
    fn unreachable_sites_yield_none() {
        let w = world();
        let ml = MlClassifiers::train(&w, WorldSeed::new(8));
        let dead = w
            .orgs
            .iter()
            .find(|o| !o.live_site && o.domain.is_some())
            .unwrap();
        assert!(ml.classify(&w.web, dead.domain.as_ref().unwrap()).is_none());
    }

    #[test]
    fn classify_text_is_deterministic() {
        let w = world();
        let ml = MlClassifiers::train(&w, WorldSeed::new(9));
        let a = ml.classify_text("fiber broadband internet provider coverage plans");
        let b = ml.classify_text("fiber broadband internet provider coverage plans");
        assert_eq!(a, b);
        assert!(a.p_isp > a.p_hosting);
    }
}
