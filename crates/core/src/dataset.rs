//! The released dataset format.
//!
//! "We will continually release the up-to-date ASdb dataset at
//! asdb.stanford.edu for research use." The dump is JSON-lines — one
//! record per AS with its NAICSlite labels and provenance — chosen because
//! the deliverable of this system *is* a machine-readable dataset.

use crate::pipeline::Classification;
use asdb_model::Asn;
use serde::{Deserialize, Serialize};

/// One line of the released dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetRecord {
    /// The AS number.
    pub asn: Asn,
    /// Layer-1 category slugs.
    pub layer1: Vec<String>,
    /// Fully-qualified layer-2 labels (`"<layer1 slug>/<subcategory>"`).
    pub layer2: Vec<String>,
    /// Which pipeline stage produced the labels.
    pub stage: String,
    /// Contributing sources.
    pub sources: Vec<String>,
    /// Sources that were unavailable when the record was produced (absent
    /// in dumps from healthy runs and in pre-transport dumps).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub degraded: Vec<String>,
}

impl DatasetRecord {
    /// Project a pipeline [`Classification`] into the release shape.
    pub fn from_classification(c: &Classification) -> DatasetRecord {
        DatasetRecord {
            asn: c.asn,
            layer1: c
                .categories
                .layer1s()
                .iter()
                .map(|l| l.slug().to_owned())
                .collect(),
            layer2: c
                .categories
                .layer2s()
                .iter()
                .map(|l| format!("{}/{}", l.layer1.slug(), l.name()))
                .collect(),
            stage: c.stage.label().to_owned(),
            sources: c.sources.iter().map(|s| s.name().to_owned()).collect(),
            degraded: c.degraded.iter().map(|s| s.name().to_owned()).collect(),
        }
    }
}

/// Serialize classifications as JSON lines.
pub fn write_jsonl(classifications: &[Classification]) -> String {
    classifications
        .iter()
        .map(|c| {
            serde_json::to_string(&DatasetRecord::from_classification(c))
                .expect("record serializes")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parse a JSON-lines dump. Malformed lines are skipped and counted.
pub fn read_jsonl(input: &str) -> (Vec<DatasetRecord>, usize) {
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for line in input.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<DatasetRecord>(line) {
            Ok(r) => out.push(r),
            Err(_) => skipped += 1,
        }
    }
    (out, skipped)
}

/// Serialize classifications in the asdb.stanford.edu CSV shape:
/// `ASN,Layer 1 Category,Layer 2 Category,...` with one column pair per
/// label slot and quoted fields.
pub fn write_csv(classifications: &[Classification]) -> String {
    let max_labels = classifications
        .iter()
        .map(|c| c.categories.layer2s().len().max(1))
        .max()
        .unwrap_or(1);
    let mut out = String::from("ASN");
    for i in 1..=max_labels {
        out.push_str(&format!(
            ",\"Layer 1 Category {i}\",\"Layer 2 Category {i}\""
        ));
    }
    out.push('\n');
    for c in classifications {
        out.push_str(&c.asn.to_string());
        let l2s: Vec<_> = c.categories.layer2s().into_iter().collect();
        if l2s.is_empty() {
            // Layer-1-only (or empty) rows still emit the first pair.
            let l1 = c
                .categories
                .layer1s()
                .into_iter()
                .next()
                .map(|l| l.title().to_owned())
                .unwrap_or_default();
            out.push_str(&format!(",\"{}\",\"\"", csv_escape(&l1)));
            for _ in 1..max_labels {
                out.push_str(",\"\",\"\"");
            }
        } else {
            for i in 0..max_labels {
                match l2s.get(i) {
                    Some(l2) => out.push_str(&format!(
                        ",\"{}\",\"{}\"",
                        csv_escape(l2.layer1.title()),
                        csv_escape(l2.name())
                    )),
                    None => out.push_str(",\"\",\"\""),
                }
            }
        }
        out.push('\n');
    }
    out
}

fn csv_escape(s: &str) -> String {
    s.replace('"', "\"\"")
}

/// What changed between two dataset dumps — the §5.3 "continually release
/// the up-to-date ASdb dataset" story needs diffable releases.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetDiff {
    /// ASNs present only in the new dump.
    pub added: Vec<Asn>,
    /// ASNs present only in the old dump.
    pub removed: Vec<Asn>,
    /// ASNs whose labels changed, with (old, new) layer-2 label lists.
    pub relabeled: Vec<(Asn, Vec<String>, Vec<String>)>,
}

impl DatasetDiff {
    /// Whether anything changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.relabeled.is_empty()
    }

    /// Total ASes touched.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.relabeled.len()
    }
}

/// Diff two record sets by ASN.
pub fn diff(old: &[DatasetRecord], new: &[DatasetRecord]) -> DatasetDiff {
    use std::collections::BTreeMap;
    let old_map: BTreeMap<Asn, &DatasetRecord> = old.iter().map(|r| (r.asn, r)).collect();
    let new_map: BTreeMap<Asn, &DatasetRecord> = new.iter().map(|r| (r.asn, r)).collect();
    let mut out = DatasetDiff::default();
    for (asn, rec) in &new_map {
        match old_map.get(asn) {
            None => out.added.push(*asn),
            Some(o) if o.layer2 != rec.layer2 || o.layer1 != rec.layer1 => {
                out.relabeled
                    .push((*asn, o.layer2.clone(), rec.layer2.clone()));
            }
            Some(_) => {}
        }
    }
    for asn in old_map.keys() {
        if !new_map.contains_key(asn) {
            out.removed.push(*asn);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Stage;
    use asdb_sources::SourceId;
    use asdb_taxonomy::naicslite::known;
    use asdb_taxonomy::{Category, CategorySet};

    fn sample() -> Classification {
        Classification {
            asn: Asn::new(3356),
            categories: CategorySet::single(Category::l2(known::isp())),
            stage: Stage::MultiAgree,
            sources: vec![SourceId::Dnb, SourceId::Zvelo],
            chosen_domain: None,
            ml: None,
            match_labels: Vec::new(),
            degraded: Vec::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let dump = write_jsonl(&[sample(), sample()]);
        let (records, skipped) = read_jsonl(&dump);
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 0);
        assert_eq!(records[0].asn, Asn::new(3356));
        assert_eq!(records[0].layer1, vec!["tech"]);
        assert!(records[0].layer2[0].contains("Internet Service Provider"));
        assert_eq!(records[0].sources, vec!["D&B", "Zvelo"]);
    }

    #[test]
    fn malformed_lines_skipped() {
        let dump = format!("{}\nnot json\n\n", write_jsonl(&[sample()]));
        let (records, skipped) = read_jsonl(&dump);
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn empty_dump() {
        let (records, skipped) = read_jsonl("");
        assert!(records.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn csv_has_header_and_quoted_fields() {
        let csv = write_csv(&[sample()]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("ASN,"));
        assert!(header.contains("Layer 1 Category 1"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("AS3356,"));
        assert!(row.contains("\"Computer and Information Technology\""));
        assert!(row.contains("Internet Service Provider"));
    }

    #[test]
    fn csv_pads_multi_label_rows() {
        use asdb_taxonomy::{Category, CategorySet};
        let mut two = sample();
        let mut cats = CategorySet::single(Category::l2(known::isp()));
        cats.insert(Category::l2(known::hosting()));
        two.categories = cats;
        let csv = write_csv(&[sample(), two]);
        // Width = widest row (2 label pairs), so each data row has
        // 1 + 2*2 = 5 columns at minimum (counting quoted commas is
        // fragile; just check both label names appear on row 3).
        let row2 = csv.lines().nth(2).unwrap();
        assert!(row2.contains("Internet Service Provider"));
        assert!(row2.contains("Hosting"));
        let row1 = csv.lines().nth(1).unwrap();
        assert!(row1.ends_with("\"\",\"\""), "short rows are padded: {row1}");
    }

    #[test]
    fn diff_detects_all_change_kinds() {
        let a = DatasetRecord {
            asn: Asn::new(1),
            layer1: vec!["tech".into()],
            layer2: vec!["tech/ISP".into()],
            stage: "x".into(),
            sources: vec![],
            degraded: vec![],
        };
        let mut b = a.clone();
        b.asn = Asn::new(2);
        let mut a_relabeled = a.clone();
        a_relabeled.layer2 = vec!["tech/Hosting".into()];
        let mut c = a.clone();
        c.asn = Asn::new(3);

        let old = vec![a.clone(), b.clone()];
        let new = vec![a_relabeled, c];
        let d = diff(&old, &new);
        assert_eq!(d.added, vec![Asn::new(3)]);
        assert_eq!(d.removed, vec![Asn::new(2)]);
        assert_eq!(d.relabeled.len(), 1);
        assert_eq!(d.relabeled[0].0, Asn::new(1));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(diff(&old, &old).is_empty());
    }
}
