//! # asdb-core
//!
//! The ASdb system (§5): "a system that uses existing data sources and
//! machine learning to create and maintain a dataset of autonomous systems,
//! their owners, and their industries."
//!
//! The crate implements the full Figure 4 architecture:
//!
//! 1. **Cache check** — "ASdb checks if the owning organization has
//!    previously been classified … and, if so, returns the cached data";
//! 2. **Match by ASN** — PeeringDB and IPinfo; "if a high confidence match
//!    occurs (i.e., only if PeeringDB returns an ISP label)" the pipeline
//!    exits early;
//! 3. **Most-likely-domain selection** — the §5.1 algorithm over RIR
//!    metadata plus ASN-queryable source domains;
//! 4. **ML classification** — the Figure 3 scrape → translate → TF-IDF →
//!    SGD pipeline for ISP/hosting detection ([`classifier`]);
//! 5. **Data-source matching** — D&B, Crunchbase, Zvelo, with entity-
//!    disagreement rejection ("ASdb rejects matches where the data source
//!    provides a domain that does not match ASdb's chosen domain");
//! 6. **Consensus / auto-choose** — agreeing sources' union, otherwise the
//!    source with the best §5.1 accuracy rank.
//!
//! Plus the operational half the paper only sketches: a sharded,
//! single-flight organization [`cache`] (concurrent misses on the same
//! organization coalesce onto one pipeline run), work-stealing [`batch`]
//! classification across threads, the §5.3 [`maintain`] loop over
//! registration churn, the public [`dataset`] dump format, and always-on
//! [`metrics`] — per-stage counters mirroring Table 8, per-source hit
//! rates, cache reuse and coalescing, scheduler chunk/steal counts, and
//! latency histograms, snapshot-able as text or JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod classifier;
pub mod dataset;
pub mod maintain;
pub mod metrics;
pub mod pipeline;
pub mod sources_set;

pub use batch::BatchConfig;
pub use cache::{CacheSnapshot, OrgCache, OrgKey};
pub use classifier::{MlClassifiers, MlVerdict};
pub use metrics::PipelineMetrics;
pub use pipeline::{AsdbSystem, Classification, Stage};
pub use sources_set::{FanoutConfig, FanoutOutcome, MatchPolicy, SourceFanout, SourceSet, Stage1};
