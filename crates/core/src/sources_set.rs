//! The bundle of external data sources ASdb ships with, and the
//! fault-aware fan-out that queries them.
//!
//! [`SourceSet`] owns the five production sources (Table 1).
//! [`SourceFanout`] is the pipeline's only way to *call* them: every
//! search goes through a per-source [`SourceClient`] (timeout, bounded
//! retry with deterministic backoff, circuit breaker) over a shared
//! [`NetworkSim`], and the ASN stage and the name/domain stage each fan
//! out concurrently on scoped threads with order-stable collection. The
//! pipeline consumes typed [`SourceOutcome`]s, so "the source had
//! nothing" and "the source was unavailable" stay distinct — the §3.5
//! partial-coverage consensus runs on whatever subset answered, and the
//! unavailable subset is surfaced as `degraded`.
//!
//! Determinism: each source has its own logical clock inside the sim and
//! the stages touch disjoint source subsets, so a serial run of the
//! concurrent fan-out is bit-identical to the sequential one — and with
//! faults disabled the layer is transparent (same labels as a direct
//! `search` loop).

use crate::metrics::PipelineMetrics;
use asdb_model::{Asn, Domain, WorldSeed};
use asdb_sources::crunchbase::Crunchbase;
use asdb_sources::dnb::Dnb;
use asdb_sources::ipinfo::Ipinfo;
use asdb_sources::peeringdb::PeeringDb;
use asdb_sources::transport::{
    BreakerState, FaultPlan, NetworkSim, OutcomeKind, SourceClient, SourceOutcome, TransportConfig,
};
use asdb_sources::zvelo::Zvelo;
use asdb_sources::{DataSource, Query, SourceId, SourceMatch};
use asdb_taxonomy::schemes::PeeringDbType;
use asdb_worldgen::World;

/// ASdb's five production sources (Table 1: "ASdb uses D&B, Crunchbase,
/// PeeringDB, IPinfo, and Zvelo").
#[derive(Debug, Clone)]
pub struct SourceSet {
    /// Dun & Bradstreet.
    pub dnb: Dnb,
    /// Crunchbase.
    pub crunchbase: Crunchbase,
    /// Zvelo.
    pub zvelo: Zvelo,
    /// PeeringDB.
    pub peeringdb: PeeringDb,
    /// IPinfo.
    pub ipinfo: Ipinfo,
}

impl SourceSet {
    /// Build all five over a world.
    pub fn build(world: &World, seed: WorldSeed) -> SourceSet {
        SourceSet {
            dnb: Dnb::build(world, seed),
            crunchbase: Crunchbase::build(world, seed),
            zvelo: Zvelo::build(world, seed),
            peeringdb: PeeringDb::build(world, seed),
            ipinfo: Ipinfo::build(world, seed),
        }
    }

    /// A source by id (the two dropped sources are not in the set).
    pub fn get(&self, id: SourceId) -> Option<&dyn DataSource> {
        match id {
            SourceId::Dnb => Some(&self.dnb),
            SourceId::Crunchbase => Some(&self.crunchbase),
            SourceId::Zvelo => Some(&self.zvelo),
            SourceId::PeeringDb => Some(&self.peeringdb),
            SourceId::Ipinfo => Some(&self.ipinfo),
            SourceId::ZoomInfo | SourceId::Clearbit => None,
        }
    }

    /// Run an automated search against every production source.
    pub fn search_all(&self, query: &Query) -> Vec<SourceMatch> {
        SourceId::ASDB_FIVE
            .iter()
            .filter_map(|id| self.get(*id))
            .filter_map(|s| s.search(query))
            .collect()
    }
}

/// The ASN-indexed sources the Figure 4 stage 1 queries, in the order
/// their outcomes are collected.
const STAGE1: [SourceId; 2] = [SourceId::PeeringDb, SourceId::Ipinfo];

/// The web sources stage 3 queries once a name/domain is available.
const STAGE3: [SourceId; 3] = [SourceId::Dnb, SourceId::Crunchbase, SourceId::Zvelo];

/// Tuning for the fan-out layer: concurrency, transport, and injected
/// network weather.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Issue each stage's source calls on scoped threads (`false`
    /// reproduces the sequential legacy path; outcomes are identical
    /// either way).
    pub concurrent: bool,
    /// Per-source timeout / retry / backoff / breaker tuning.
    pub transport: TransportConfig,
    /// Injected faults (none by default — the transport is transparent).
    pub faults: FaultPlan,
}

impl Default for FanoutConfig {
    fn default() -> FanoutConfig {
        FanoutConfig {
            concurrent: true,
            transport: TransportConfig::default(),
            faults: FaultPlan::none(),
        }
    }
}

/// The collected stage-1 (ASN-indexed) fan-out: one outcome per source,
/// PeeringDB then IPinfo, plus PeeringDB's operator-reported network type
/// when that source was reachable (the Figure 4 shortcut's input).
#[derive(Debug)]
pub struct Stage1 {
    /// Outcomes for PeeringDB then IPinfo.
    pub outcomes: Vec<SourceOutcome>,
    /// PeeringDB's self-reported type, if PeeringDB answered and lists
    /// the AS.
    pub network_type: Option<PeeringDbType>,
}

/// The match-acceptance policy the pipeline applies to raw outcomes —
/// §5.1's entity-disagreement rejection plus the empty-label filter.
#[derive(Debug, Clone, Copy)]
pub struct MatchPolicy<'a> {
    /// Reject matches whose domain disagrees with the chosen one.
    pub reject_entity_disagreement: bool,
    /// The §5.1 chosen domain the disagreement check compares against.
    pub chosen_domain: Option<&'a Domain>,
}

impl MatchPolicy<'_> {
    /// Whether this candidate match is rejected ("ASdb rejects matches
    /// where the data source provides a domain that does not match ASdb's
    /// chosen domain", plus matches carrying no translatable labels).
    pub fn rejects(&self, m: &SourceMatch) -> bool {
        if self.reject_entity_disagreement {
            if let (Some(md), Some(cd)) = (&m.domain, self.chosen_domain) {
                if md.registrable() != cd.registrable() {
                    return true;
                }
            }
        }
        m.categories.is_empty()
    }
}

/// A fully resolved fan-out: every raw outcome, the matches that survived
/// the policy (in stable [`SourceId::ASDB_FIVE`] order), and the sources
/// that were unavailable.
#[derive(Debug)]
pub struct FanoutOutcome {
    /// Every per-source outcome, in query order.
    pub outcomes: Vec<SourceOutcome>,
    /// Matches that survived the [`MatchPolicy`].
    pub matches: Vec<SourceMatch>,
    /// Sources that timed out, failed, or were breaker-shed.
    pub degraded: Vec<SourceId>,
}

/// The fault-aware fan-out over the five production sources: one
/// [`SourceClient`] per source (own breaker) sharing one seeded
/// [`NetworkSim`].
#[derive(Debug)]
pub struct SourceFanout {
    config: FanoutConfig,
    sim: NetworkSim,
    clients: [SourceClient; SourceId::ASDB_FIVE.len()],
}

impl SourceFanout {
    /// A transparent fan-out (no faults, default transport) for `seed`.
    pub fn new(seed: WorldSeed) -> SourceFanout {
        SourceFanout::with_config(seed, FanoutConfig::default())
    }

    /// A fan-out with explicit transport tuning and fault plan. All
    /// randomness (latency draws, fault draws, backoff jitter) derives
    /// from `seed`, so equal seed + config ⇒ bit-identical behaviour.
    pub fn with_config(seed: WorldSeed, config: FanoutConfig) -> SourceFanout {
        let sim = NetworkSim::with_faults(seed, config.faults.clone());
        let clients =
            std::array::from_fn(|i| SourceClient::new(SourceId::ASDB_FIVE[i], &config.transport));
        SourceFanout {
            config,
            sim,
            clients,
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &FanoutConfig {
        &self.config
    }

    /// The shared network simulation.
    pub fn sim(&self) -> &NetworkSim {
        &self.sim
    }

    /// The circuit-breaker state for a production source (`None` for the
    /// two dropped sources, which have no client).
    pub fn breaker_state(&self, id: SourceId) -> Option<BreakerState> {
        let i = SourceId::ASDB_FIVE.iter().position(|s| *s == id)?;
        Some(self.clients[i].breaker_state())
    }

    fn client(&self, id: SourceId) -> &SourceClient {
        let i = SourceId::ASDB_FIVE
            .iter()
            .position(|s| *s == id)
            .expect("fan-out only queries the ASdb five");
        &self.clients[i]
    }

    /// Issue one query to each of `ids` — on scoped threads when
    /// configured concurrent — and collect outcomes in `ids` order
    /// regardless of completion order. Transport accounting (queries,
    /// retries, timeouts, failures, breaker sheds) is recorded here, at
    /// call time; match/reject resolution happens later in
    /// [`SourceFanout::resolve`].
    fn calls(
        &self,
        sources: &SourceSet,
        ids: &[SourceId],
        query: &Query,
        metrics: &PipelineMetrics,
    ) -> Vec<SourceOutcome> {
        let run = |id: SourceId| -> SourceOutcome {
            let source = sources.get(id).expect("ASdb-five source present");
            let out = self
                .client(id)
                .call(&self.config.transport, &self.sim, source, query);
            metrics.record_source_outcome(&out);
            out
        };
        let t = std::time::Instant::now();
        let outcomes = if self.config.concurrent && ids.len() > 1 {
            let run = &run;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = ids
                    .iter()
                    .map(|id| scope.spawn(move |_| run(*id)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fan-out worker panicked"))
                    .collect()
            })
            .expect("fan-out scope")
        } else {
            ids.iter().copied().map(run).collect()
        };
        metrics.record_fanout(t.elapsed());
        outcomes
    }

    /// Stage 1: query the ASN-indexed sources (PeeringDB, IPinfo)
    /// concurrently. PeeringDB's network type is only consulted when its
    /// call succeeded — a degraded PeeringDB disables the shortcut rather
    /// than silently answering from data the transport never delivered.
    pub fn stage1(&self, sources: &SourceSet, asn: Asn, metrics: &PipelineMetrics) -> Stage1 {
        let outcomes = self.calls(sources, &STAGE1, &Query::by_asn(asn), metrics);
        let network_type = if outcomes[0].is_degraded() {
            None
        } else {
            sources
                .get(SourceId::PeeringDb)
                .and_then(|s| s.network_type(asn))
        };
        Stage1 {
            outcomes,
            network_type,
        }
    }

    /// Stage 3: query the web sources (D&B, Crunchbase, Zvelo)
    /// concurrently, merge with the stage-1 outcomes into stable
    /// [`SourceId::ASDB_FIVE`] order, and resolve everything against the
    /// match policy.
    pub fn stage3(
        &self,
        sources: &SourceSet,
        query: &Query,
        stage1: Stage1,
        policy: &MatchPolicy<'_>,
        metrics: &PipelineMetrics,
    ) -> FanoutOutcome {
        let mut outcomes = self.calls(sources, &STAGE3, query, metrics);
        outcomes.extend(stage1.outcomes);
        SourceFanout::resolve(outcomes, policy, metrics)
    }

    /// Finalize stage-1 accounting when the PeeringDB ISP shortcut ends
    /// the pipeline before stage 3. Both ASN calls were already issued, so
    /// both must resolve: PeeringDB's answer (the shortcut's own evidence)
    /// counts as its match, and IPinfo's already-computed result is
    /// matched / rejected / no-matched under the domain-free policy
    /// instead of being silently dropped — without this, per-source
    /// `queries` exceed `matches + rejects + no_match` and the Table 8
    /// bookkeeping never reconciles.
    pub fn finalize_shortcut(&self, stage1: Stage1, metrics: &PipelineMetrics) -> FanoutOutcome {
        let policy = MatchPolicy {
            reject_entity_disagreement: false,
            chosen_domain: None,
        };
        SourceFanout::resolve(stage1.outcomes, &policy, metrics)
    }

    /// Resolve raw outcomes against the policy, source-agnostically: each
    /// successful call becomes exactly one of match / reject / no-match
    /// (recorded), each degraded call lands in `degraded`. Together with
    /// call-time accounting this keeps the per-source invariant
    /// `queries == matches + rejects + no_match + timeouts + failures`.
    pub fn resolve(
        outcomes: Vec<SourceOutcome>,
        policy: &MatchPolicy<'_>,
        metrics: &PipelineMetrics,
    ) -> FanoutOutcome {
        let mut matches = Vec::new();
        let mut degraded = Vec::new();
        for o in &outcomes {
            match &o.kind {
                OutcomeKind::Matched(m) => {
                    if policy.rejects(m) {
                        metrics.record_source_reject(o.source);
                    } else {
                        metrics.record_source_match(o.source);
                        matches.push(m.clone());
                    }
                }
                OutcomeKind::NoMatch => {}
                OutcomeKind::TimedOut | OutcomeKind::Failed | OutcomeKind::BreakerOpen => {
                    degraded.push(o.source);
                }
            }
        }
        FanoutOutcome {
            outcomes,
            matches,
            degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::CategorySet;
    use asdb_worldgen::WorldConfig;
    use std::time::Duration;

    #[test]
    fn builds_and_dispatches() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(5)));
        let s = SourceSet::build(&w, WorldSeed::new(6));
        assert!(s.get(SourceId::Dnb).is_some());
        assert!(s.get(SourceId::ZoomInfo).is_none());
        // An ASN-only query can only hit the two networking sources.
        let asn = w.ases[0].asn;
        let hits = s.search_all(&Query::by_asn(asn));
        for h in &hits {
            assert!(matches!(h.source, SourceId::PeeringDb | SourceId::Ipinfo));
        }
    }

    #[test]
    fn dropped_sources_stay_excluded_from_the_fanout() {
        let f = SourceFanout::new(WorldSeed::new(9));
        assert!(f.breaker_state(SourceId::ZoomInfo).is_none());
        assert!(f.breaker_state(SourceId::Clearbit).is_none());
        for id in SourceId::ASDB_FIVE {
            assert_eq!(f.breaker_state(id), Some(BreakerState::Closed));
        }
    }

    #[test]
    fn concurrent_and_sequential_fanout_agree_even_under_faults() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(5)));
        let s = SourceSet::build(&w, WorldSeed::new(6));
        let metrics = PipelineMetrics::new();
        let seed = WorldSeed::new(7);
        let faulty = |concurrent| {
            SourceFanout::with_config(
                seed,
                FanoutConfig {
                    concurrent,
                    faults: FaultPlan::uniform(0.2),
                    ..FanoutConfig::default()
                },
            )
        };
        let (conc, seq) = (faulty(true), faulty(false));
        for rec in w.ases.iter().take(40) {
            let a = conc.stage1(&s, rec.asn, &metrics);
            let b = seq.stage1(&s, rec.asn, &metrics);
            // Order-stable collection: PeeringDB then IPinfo, always.
            assert_eq!(a.outcomes[0].source, SourceId::PeeringDb);
            assert_eq!(a.outcomes[1].source, SourceId::Ipinfo);
            // Per-source logical clocks make the two modes bit-identical,
            // faults, retries, virtual elapsed time and all.
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.network_type, b.network_type);
        }
    }

    #[test]
    fn stage3_outcomes_follow_asdb_five_order() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(5)));
        let s = SourceSet::build(&w, WorldSeed::new(6));
        let metrics = PipelineMetrics::new();
        let f = SourceFanout::new(WorldSeed::new(8));
        let rec = &w.ases[0];
        let stage1 = f.stage1(&s, rec.asn, &metrics);
        let policy = MatchPolicy {
            reject_entity_disagreement: false,
            chosen_domain: None,
        };
        let query = Query::by_name(&rec.parsed.name);
        let out = f.stage3(&s, &query, stage1, &policy, &metrics);
        let order: Vec<SourceId> = out.outcomes.iter().map(|o| o.source).collect();
        assert_eq!(order, SourceId::ASDB_FIVE.to_vec());
        assert!(out.degraded.is_empty(), "no faults injected");
    }

    #[test]
    fn empty_category_matches_are_rejected_with_counters() {
        let metrics = PipelineMetrics::new();
        let cache = metrics.build_cache();
        let empty_match = SourceMatch {
            source: SourceId::Dnb,
            entity: None,
            domain: None,
            raw_label: "untranslatable".into(),
            categories: CategorySet::new(),
            confidence: None,
        };
        let outcome = SourceOutcome {
            source: SourceId::Dnb,
            kind: OutcomeKind::Matched(empty_match),
            attempts: 1,
            retries: 0,
            elapsed: Duration::ZERO,
        };
        metrics.record_source_outcome(&outcome);
        let policy = MatchPolicy {
            reject_entity_disagreement: true,
            chosen_domain: None,
        };
        let out = SourceFanout::resolve(vec![outcome], &policy, &metrics);
        assert!(out.matches.is_empty());
        assert!(out.degraded.is_empty());
        let snap = metrics.snapshot(&cache);
        assert_eq!(snap.counter("source.dnb.queries"), 1);
        assert_eq!(snap.counter("source.dnb.rejects"), 1);
        assert_eq!(snap.counter("source.dnb.matches"), 0);
    }

    #[test]
    fn degraded_outcomes_skip_match_accounting() {
        let metrics = PipelineMetrics::new();
        let cache = metrics.build_cache();
        let outcome = SourceOutcome {
            source: SourceId::Zvelo,
            kind: OutcomeKind::TimedOut,
            attempts: 3,
            retries: 2,
            elapsed: Duration::from_millis(3100),
        };
        metrics.record_source_outcome(&outcome);
        let policy = MatchPolicy {
            reject_entity_disagreement: true,
            chosen_domain: None,
        };
        let out = SourceFanout::resolve(vec![outcome], &policy, &metrics);
        assert_eq!(out.degraded, vec![SourceId::Zvelo]);
        let snap = metrics.snapshot(&cache);
        assert_eq!(snap.counter("source.zvelo.queries"), 1);
        assert_eq!(snap.counter("source.zvelo.timeouts"), 1);
        assert_eq!(snap.counter("source.zvelo.retries"), 2);
        assert_eq!(snap.counter("source.zvelo.matches"), 0);
        assert_eq!(snap.counter("source.zvelo.rejects"), 0);
    }
}
