//! The bundle of external data sources ASdb ships with.

use asdb_model::WorldSeed;
use asdb_sources::crunchbase::Crunchbase;
use asdb_sources::dnb::Dnb;
use asdb_sources::ipinfo::Ipinfo;
use asdb_sources::peeringdb::PeeringDb;
use asdb_sources::zvelo::Zvelo;
use asdb_sources::{DataSource, Query, SourceId, SourceMatch};
use asdb_worldgen::World;

/// ASdb's five production sources (Table 1: "ASdb uses D&B, Crunchbase,
/// PeeringDB, IPinfo, and Zvelo").
#[derive(Debug, Clone)]
pub struct SourceSet {
    /// Dun & Bradstreet.
    pub dnb: Dnb,
    /// Crunchbase.
    pub crunchbase: Crunchbase,
    /// Zvelo.
    pub zvelo: Zvelo,
    /// PeeringDB.
    pub peeringdb: PeeringDb,
    /// IPinfo.
    pub ipinfo: Ipinfo,
}

impl SourceSet {
    /// Build all five over a world.
    pub fn build(world: &World, seed: WorldSeed) -> SourceSet {
        SourceSet {
            dnb: Dnb::build(world, seed),
            crunchbase: Crunchbase::build(world, seed),
            zvelo: Zvelo::build(world, seed),
            peeringdb: PeeringDb::build(world, seed),
            ipinfo: Ipinfo::build(world, seed),
        }
    }

    /// A source by id (the two dropped sources are not in the set).
    pub fn get(&self, id: SourceId) -> Option<&dyn DataSource> {
        match id {
            SourceId::Dnb => Some(&self.dnb),
            SourceId::Crunchbase => Some(&self.crunchbase),
            SourceId::Zvelo => Some(&self.zvelo),
            SourceId::PeeringDb => Some(&self.peeringdb),
            SourceId::Ipinfo => Some(&self.ipinfo),
            SourceId::ZoomInfo | SourceId::Clearbit => None,
        }
    }

    /// Run an automated search against every production source.
    pub fn search_all(&self, query: &Query) -> Vec<SourceMatch> {
        SourceId::ASDB_FIVE
            .iter()
            .filter_map(|id| self.get(*id))
            .filter_map(|s| s.search(query))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_worldgen::WorldConfig;

    #[test]
    fn builds_and_dispatches() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(5)));
        let s = SourceSet::build(&w, WorldSeed::new(6));
        assert!(s.get(SourceId::Dnb).is_some());
        assert!(s.get(SourceId::ZoomInfo).is_none());
        // An ASN-only query can only hit the two networking sources.
        let asn = w.ases[0].asn;
        let hits = s.search_all(&Query::by_asn(asn));
        for h in &hits {
            assert!(matches!(h.source, SourceId::PeeringDb | SourceId::Ipinfo));
        }
    }
}
