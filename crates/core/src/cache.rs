//! The organization cache.
//!
//! "ASdb checks if the owning organization has previously been classified
//! (e.g., because another AS belonging to the same organization was
//! previously classified), and, if so, ASdb returns the cached data"
//! (§5.1). Organizations are identified without ground truth: by their
//! selected domain when one exists, otherwise by the normalized WHOIS name.

use asdb_model::{Domain, OrgName};
use asdb_taxonomy::CategorySet;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The cache key: how ASdb recognizes "the same organization" across ASes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKey {
    /// Keyed by registrable domain (strongest identity signal).
    Domain(String),
    /// Keyed by normalized organization name.
    Name(String),
}

impl OrgKey {
    /// Derive a key from the available identity signals. `None` when the
    /// record has neither a domain nor a usable name.
    pub fn derive(domain: Option<&Domain>, name: &str) -> Option<OrgKey> {
        if let Some(d) = domain {
            return Some(OrgKey::Domain(d.registrable().as_str().to_owned()));
        }
        let normalized = OrgName::new(name).normalized();
        (!normalized.is_empty()).then_some(OrgKey::Name(normalized))
    }
}

/// A cached classification result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedResult {
    /// The classification.
    pub categories: CategorySet,
    /// Provenance note (stage name at classification time).
    pub provenance: String,
}

/// Thread-safe organization cache.
#[derive(Debug, Default)]
pub struct OrgCache {
    map: RwLock<HashMap<OrgKey, CachedResult>>,
}

impl OrgCache {
    /// Empty cache.
    pub fn new() -> OrgCache {
        OrgCache::default()
    }

    /// Look up a key.
    pub fn get(&self, key: &OrgKey) -> Option<CachedResult> {
        self.map.read().get(key).cloned()
    }

    /// Store a result.
    pub fn put(&self, key: OrgKey, result: CachedResult) {
        self.map.write().insert(key, result);
    }

    /// Invalidate a key (ownership metadata changed, §5.3).
    pub fn invalidate(&self, key: &OrgKey) -> bool {
        self.map.write().remove(key).is_some()
    }

    /// Number of cached organizations.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;
    use asdb_taxonomy::Category;

    #[test]
    fn key_prefers_domain() {
        let d = Domain::new("www.acme.com").unwrap();
        let k = OrgKey::derive(Some(&d), "Acme Inc").unwrap();
        assert_eq!(k, OrgKey::Domain("acme.com".into()));
        let k = OrgKey::derive(None, "Acme Inc").unwrap();
        assert_eq!(k, OrgKey::Name("acme".into()));
        assert!(OrgKey::derive(None, "  ").is_none());
    }

    #[test]
    fn name_key_survives_variants() {
        // Same org, different legal-suffix spellings → same key.
        let a = OrgKey::derive(None, "Nortel Ridge Telecom LLC").unwrap();
        let b = OrgKey::derive(None, "Nortel Ridge Telecom").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn put_get_invalidate() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        assert!(cache.get(&key).is_none());
        cache.put(
            key.clone(),
            CachedResult {
                categories: CategorySet::single(Category::l2(known::isp())),
                provenance: "test".into(),
            },
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key).is_some());
        assert!(cache.invalidate(&key));
        assert!(!cache.invalidate(&key));
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(OrgCache::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = OrgKey::Name(format!("org-{t}-{i}"));
                    c.put(
                        key.clone(),
                        CachedResult {
                            categories: CategorySet::new(),
                            provenance: "t".into(),
                        },
                    );
                    assert!(c.get(&key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 800);
    }
}
