//! The organization cache.
//!
//! "ASdb checks if the owning organization has previously been classified
//! (e.g., because another AS belonging to the same organization was
//! previously classified), and, if so, ASdb returns the cached data"
//! (§5.1). Organizations are identified without ground truth: by their
//! selected domain when one exists, otherwise by the normalized WHOIS name.
//!
//! ## Concurrency
//!
//! The map is split into `N` power-of-two shards (default
//! `next_power_of_two(4 × cores)`), each behind its own `RwLock`, so
//! parallel batch workers touching different organizations never contend
//! on one global lock. On top of the shards sits a **single-flight**
//! protocol: the first worker to miss on an [`OrgKey`] installs an
//! in-flight slot and runs the full pipeline; any other worker missing on
//! the same key while that computation is running blocks on the slot and
//! reuses the leader's result instead of redoing the scrape+ML work
//! (counted as `cache.coalesced`). A leader that panics abandons its slot
//! and waiters recover by re-running the lookup.

use asdb_model::{Domain, OrgName};
use asdb_obs::Counter;
use asdb_taxonomy::CategorySet;
use parking_lot::{Condvar, Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The cache key: how ASdb recognizes "the same organization" across ASes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKey {
    /// Keyed by registrable domain (strongest identity signal).
    Domain(String),
    /// Keyed by normalized organization name.
    Name(String),
}

impl OrgKey {
    /// Derive a key from the available identity signals. `None` when the
    /// record has neither a domain nor a usable name.
    pub fn derive(domain: Option<&Domain>, name: &str) -> Option<OrgKey> {
        if let Some(d) = domain {
            return Some(OrgKey::Domain(d.registrable().as_str().to_owned()));
        }
        let normalized = OrgName::new(name).normalized();
        (!normalized.is_empty()).then_some(OrgKey::Name(normalized))
    }
}

/// A cached classification result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedResult {
    /// The classification.
    pub categories: CategorySet,
    /// Provenance note (stage name at classification time).
    pub provenance: String,
}

/// A serializable view of the cache's occupancy and reuse statistics —
/// the §5.1 "previously classified organization" signal, quantified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Organizations currently cached.
    pub entries: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing (single-flight leaders included).
    pub misses: u64,
    /// Results stored.
    pub inserts: u64,
    /// Lookups that joined an in-flight computation instead of redoing it.
    #[serde(default)]
    pub coalesced: u64,
    /// `(hits + coalesced) / (hits + coalesced + misses)`, 0 when no
    /// lookups happened.
    pub hit_rate: f64,
    /// Number of shards the map is split into.
    #[serde(default)]
    pub shards: u64,
    /// Per-shard occupancy (ready entries only), `shards` long.
    #[serde(default)]
    pub per_shard: Vec<u64>,
}

/// A shard entry: either a finished result or a computation in flight.
#[derive(Debug, Clone)]
enum Slot {
    Ready(CachedResult),
    InFlight(Arc<Flight>),
}

/// State of one in-flight computation.
#[derive(Debug, Clone)]
enum FlightState {
    Pending,
    Done(CachedResult),
    /// The leader dropped its guard without completing (panic or early
    /// return); waiters must retry from scratch.
    Abandoned,
}

/// The single-flight rendezvous: waiters block on `cv` until `state`
/// leaves `Pending`.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn pending() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Block until the leader finishes or abandons; `None` = abandoned.
    fn wait(&self) -> Option<CachedResult> {
        let mut st = self.state.lock();
        while matches!(*st, FlightState::Pending) {
            self.cv.wait(&mut st);
        }
        match &*st {
            FlightState::Done(r) => Some(r.clone()),
            FlightState::Abandoned => None,
            FlightState::Pending => unreachable!("wait loop exits only on resolution"),
        }
    }

    fn resolve(&self, state: FlightState) {
        *self.state.lock() = state;
        self.cv.notify_all();
    }
}

impl fmt::Debug for Flight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Flight { .. }")
    }
}

/// The outcome of a single-flight lookup ([`OrgCache::begin`]).
#[derive(Debug)]
pub enum Lookup<'a> {
    /// The key was already cached.
    Hit(CachedResult),
    /// Another worker was computing this key; we waited and reuse its
    /// result.
    Coalesced(CachedResult),
    /// Nobody has this key: the caller is now the leader and must either
    /// [`FlightGuard::complete`] the guard or drop it to abandon.
    Miss(FlightGuard<'a>),
}

/// Leadership over one in-flight cache slot. Completing stores the result
/// and wakes every coalesced waiter; dropping without completing (e.g. on
/// a panic inside the pipeline) abandons the slot so waiters can recover.
#[derive(Debug)]
pub struct FlightGuard<'a> {
    cache: &'a OrgCache,
    key: OrgKey,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard<'_> {
    /// Publish the computed result: store it in the shard (unless the slot
    /// was invalidated mid-flight) and wake all waiters with it.
    pub fn complete(mut self, result: CachedResult) {
        self.completed = true;
        let shard = self.cache.shard_of(&self.key);
        {
            let mut map = shard.write();
            // Only store if the slot still belongs to this flight: an
            // invalidation that raced with the computation wins.
            if matches!(map.get(&self.key), Some(Slot::InFlight(f)) if Arc::ptr_eq(f, &self.flight))
            {
                map.insert(self.key.clone(), Slot::Ready(result.clone()));
                self.cache.inserts.inc();
            }
        }
        self.flight.resolve(FlightState::Done(result));
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let shard = self.cache.shard_of(&self.key);
        {
            let mut map = shard.write();
            if matches!(map.get(&self.key), Some(Slot::InFlight(f)) if Arc::ptr_eq(f, &self.flight))
            {
                map.remove(&self.key);
            }
        }
        self.flight.resolve(FlightState::Abandoned);
    }
}

/// Thread-safe, sharded organization cache with single-flight miss
/// coalescing.
///
/// Lookup/store traffic is counted on shared [`Counter`]s so reuse across
/// same-org ASes (§5.1) is observable; the counters can be supplied by a
/// metrics registry via [`OrgCache::with_counters`] or default to private
/// ones.
#[derive(Debug)]
pub struct OrgCache {
    shards: Box<[RwLock<HashMap<OrgKey, Slot>>]>,
    mask: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    inserts: Arc<Counter>,
    coalesced: Arc<Counter>,
}

impl Default for OrgCache {
    fn default() -> OrgCache {
        OrgCache::new()
    }
}

/// Default shard count: `next_power_of_two(4 × cores)` — enough shards
/// that batch workers touching different organizations rarely collide.
pub fn default_shards() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (4 * cores).next_power_of_two()
}

impl OrgCache {
    /// Empty cache with the default shard count.
    pub fn new() -> OrgCache {
        OrgCache::with_shards(default_shards())
    }

    /// Empty cache with an explicit shard count (rounded up to a power of
    /// two; 1 reproduces the legacy single-lock behavior).
    pub fn with_shards(n: usize) -> OrgCache {
        OrgCache::with_counters_and_shards(
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            n,
        )
    }

    /// Empty cache (default shard count) whose traffic counters are shared
    /// with a metrics registry.
    pub fn with_counters(
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        inserts: Arc<Counter>,
        coalesced: Arc<Counter>,
    ) -> OrgCache {
        OrgCache::with_counters_and_shards(hits, misses, inserts, coalesced, default_shards())
    }

    /// Shared counters and an explicit shard count.
    pub fn with_counters_and_shards(
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        inserts: Arc<Counter>,
        coalesced: Arc<Counter>,
        n: usize,
    ) -> OrgCache {
        let n = n.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        OrgCache {
            shards,
            mask: n - 1,
            hits,
            misses,
            inserts,
            coalesced,
        }
    }

    /// Number of shards the map is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &OrgKey) -> &RwLock<HashMap<OrgKey, Slot>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize & self.mask]
    }

    /// Look up a key. In-flight slots count as misses here; use
    /// [`OrgCache::begin`] to participate in single-flight coalescing.
    pub fn get(&self, key: &OrgKey) -> Option<CachedResult> {
        let hit = match self.shard_of(key).read().get(key) {
            Some(Slot::Ready(r)) => Some(r.clone()),
            _ => None,
        };
        match hit {
            Some(r) => {
                self.hits.inc();
                Some(r)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Single-flight lookup. A [`Lookup::Miss`] makes the caller the
    /// leader for this key: concurrent `begin` calls on the same key block
    /// until the leader completes (→ [`Lookup::Coalesced`]) or abandons
    /// (→ they retry and one becomes the new leader).
    pub fn begin(&self, key: &OrgKey) -> Lookup<'_> {
        loop {
            // Fast read path.
            let waiting = {
                let map = self.shard_of(key).read();
                match map.get(key) {
                    Some(Slot::Ready(r)) => {
                        let r = r.clone();
                        drop(map);
                        self.hits.inc();
                        return Lookup::Hit(r);
                    }
                    Some(Slot::InFlight(f)) => Some(Arc::clone(f)),
                    None => None,
                }
            };
            if let Some(flight) = waiting {
                match flight.wait() {
                    Some(r) => {
                        self.coalesced.inc();
                        return Lookup::Coalesced(r);
                    }
                    None => continue, // leader abandoned — retry
                }
            }
            // Slow path: take the write lock and either observe a racing
            // winner or install our own in-flight slot.
            let shard = self.shard_of(key);
            let mut map = shard.write();
            match map.get(key) {
                Some(Slot::Ready(r)) => {
                    let r = r.clone();
                    drop(map);
                    self.hits.inc();
                    return Lookup::Hit(r);
                }
                Some(Slot::InFlight(_)) => continue, // lost the race — rejoin via read path
                None => {
                    let flight = Flight::pending();
                    map.insert(key.clone(), Slot::InFlight(Arc::clone(&flight)));
                    drop(map);
                    self.misses.inc();
                    return Lookup::Miss(FlightGuard {
                        cache: self,
                        key: key.clone(),
                        flight,
                        completed: false,
                    });
                }
            }
        }
    }

    /// Store a result directly (bypassing single-flight — used by the §5.3
    /// community-correction path).
    pub fn put(&self, key: OrgKey, result: CachedResult) {
        self.inserts.inc();
        self.shard_of(&key).write().insert(key, Slot::Ready(result));
    }

    /// Invalidate a key (ownership metadata changed, §5.3). Wins over a
    /// concurrent in-flight computation: the leader's result is then not
    /// stored.
    pub fn invalidate(&self, key: &OrgKey) -> bool {
        self.shard_of(key).write().remove(key).is_some()
    }

    /// Number of cached organizations (ready entries; in-flight slots are
    /// not results yet).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (statistics counters are preserved).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Results stored.
    pub fn inserts(&self) -> u64 {
        self.inserts.get()
    }

    /// Lookups that joined an in-flight computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.get()
    }

    /// Fraction of lookups served without running the pipeline — hits plus
    /// coalesced waits over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits.get() + self.coalesced.get();
        let total = served + self.misses.get();
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }

    /// Serializable occupancy + reuse statistics, including per-shard
    /// occupancy.
    pub fn snapshot(&self) -> CacheSnapshot {
        let per_shard: Vec<u64> = self
            .shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(_)))
                    .count() as u64
            })
            .collect();
        CacheSnapshot {
            entries: per_shard.iter().sum(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            coalesced: self.coalesced.get(),
            hit_rate: self.hit_rate(),
            shards: self.shards.len() as u64,
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;
    use asdb_taxonomy::Category;

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            categories: CategorySet::new(),
            provenance: tag.into(),
        }
    }

    #[test]
    fn key_prefers_domain() {
        let d = Domain::new("www.acme.com").unwrap();
        let k = OrgKey::derive(Some(&d), "Acme Inc").unwrap();
        assert_eq!(k, OrgKey::Domain("acme.com".into()));
        let k = OrgKey::derive(None, "Acme Inc").unwrap();
        assert_eq!(k, OrgKey::Name("acme".into()));
        assert!(OrgKey::derive(None, "  ").is_none());
    }

    #[test]
    fn name_key_survives_variants() {
        // Same org, different legal-suffix spellings → same key.
        let a = OrgKey::derive(None, "Nortel Ridge Telecom LLC").unwrap();
        let b = OrgKey::derive(None, "Nortel Ridge Telecom").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn put_get_invalidate() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        assert!(cache.get(&key).is_none());
        cache.put(
            key.clone(),
            CachedResult {
                categories: CategorySet::single(Category::l2(known::isp())),
                provenance: "test".into(),
            },
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key).is_some());
        assert!(cache.invalidate(&key));
        assert!(!cache.invalidate(&key));
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_track_hits_misses_inserts() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.put(
            key.clone(),
            CachedResult {
                categories: CategorySet::single(Category::l2(known::isp())),
                provenance: "test".into(),
            },
        );
        assert!(cache.get(&key).is_some());
        assert!(cache.get(&key).is_some());
        assert_eq!((cache.hits(), cache.misses(), cache.inserts()), (2, 1, 1));
        let rate = cache.hit_rate();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9, "rate = {rate}");
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.coalesced, 0);
        assert_eq!(snap.shards, cache.shard_count() as u64);
        assert_eq!(snap.per_shard.iter().sum::<u64>(), snap.entries);
        // Snapshot round-trips through serde.
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let cache = OrgCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        assert_eq!(cache.snapshot().hit_rate, 0.0);
    }

    #[test]
    fn shared_counters_observe_traffic() {
        use asdb_obs::Counter;
        let hits = Arc::new(Counter::new());
        let misses = Arc::new(Counter::new());
        let inserts = Arc::new(Counter::new());
        let coalesced = Arc::new(Counter::new());
        let cache = OrgCache::with_counters(
            Arc::clone(&hits),
            Arc::clone(&misses),
            Arc::clone(&inserts),
            Arc::clone(&coalesced),
        );
        let key = OrgKey::Name("acme".into());
        let _ = cache.get(&key);
        cache.put(key.clone(), result("t"));
        let _ = cache.get(&key);
        assert_eq!(hits.get(), 1);
        assert_eq!(misses.get(), 1);
        assert_eq!(inserts.get(), 1);
        assert_eq!(coalesced.get(), 0);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(OrgCache::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = OrgKey::Name(format!("org-{t}-{i}"));
                    c.put(key.clone(), result("t"));
                    assert!(c.get(&key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 800);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(OrgCache::with_shards(0).shard_count(), 1);
        assert_eq!(OrgCache::with_shards(1).shard_count(), 1);
        assert_eq!(OrgCache::with_shards(3).shard_count(), 4);
        assert_eq!(OrgCache::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn snapshot_totals_are_shard_count_invariant() {
        // The same workload through 1, 4, and 32 shards must report
        // identical totals; only the per-shard spread may differ.
        let mut snaps = Vec::new();
        for n in [1usize, 4, 32] {
            let cache = OrgCache::with_shards(n);
            for i in 0..50 {
                let key = OrgKey::Name(format!("org-{i}"));
                assert!(cache.get(&key).is_none());
                cache.put(key.clone(), result("t"));
                assert!(cache.get(&key).is_some());
            }
            snaps.push(cache.snapshot());
        }
        for s in &snaps {
            assert_eq!(s.entries, 50);
            assert_eq!(s.hits, 50);
            assert_eq!(s.misses, 50);
            assert_eq!(s.inserts, 50);
            assert_eq!(s.per_shard.iter().sum::<u64>(), s.entries);
            assert_eq!(s.per_shard.len() as u64, s.shards);
            assert_eq!(s.hit_rate, snaps[0].hit_rate);
        }
    }

    #[test]
    fn single_flight_miss_then_complete() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        let Lookup::Miss(guard) = cache.begin(&key) else {
            panic!("fresh key must miss");
        };
        // While in flight the slot is not a ready entry.
        assert_eq!(cache.len(), 0);
        guard.complete(result("leader"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.inserts(), 1);
        match cache.begin(&key) {
            Lookup::Hit(r) => assert_eq!(r.provenance, "leader"),
            other => panic!("expected hit, got {other:?}"),
        };
    }

    #[test]
    fn abandoned_flight_lets_next_caller_lead() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        let Lookup::Miss(guard) = cache.begin(&key) else {
            panic!("fresh key must miss");
        };
        drop(guard); // leader "panicked"
        assert_eq!(cache.inserts(), 0);
        let Lookup::Miss(guard2) = cache.begin(&key) else {
            panic!("abandoned slot must be re-claimable");
        };
        guard2.complete(result("second"));
        assert_eq!(cache.inserts(), 1);
    }

    #[test]
    fn invalidate_during_flight_wins() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        let Lookup::Miss(guard) = cache.begin(&key) else {
            panic!("fresh key must miss");
        };
        cache.invalidate(&key);
        guard.complete(result("stale"));
        // The result was delivered to waiters but not stored.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.inserts(), 0);
    }

    #[test]
    fn sixteen_threads_same_key_coalesce_to_one_computation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        let cache = Arc::new(OrgCache::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(16));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cache = Arc::clone(&cache);
            let computations = Arc::clone(&computations);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let key = OrgKey::Name("contested".into());
                barrier.wait();
                match cache.begin(&key) {
                    Lookup::Miss(guard) => {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the other
                        // 15 threads arrive while it is pending.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        guard.complete(result("leader"));
                        "leader".to_owned()
                    }
                    Lookup::Coalesced(r) | Lookup::Hit(r) => r.provenance,
                }
            }));
        }
        let outcomes: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Exactly one thread ran the computation; everyone got its result.
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(cache.inserts(), 1);
        assert!(outcomes.iter().all(|o| o == "leader"));
        // At least one thread must have arrived inside the 50 ms window.
        assert!(
            cache.coalesced() > 0,
            "no coalescing despite a 50 ms in-flight window"
        );
        assert_eq!(cache.hits() + cache.coalesced(), 15);
        assert_eq!(cache.misses(), 1);
    }
}
