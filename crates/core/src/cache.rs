//! The organization cache.
//!
//! "ASdb checks if the owning organization has previously been classified
//! (e.g., because another AS belonging to the same organization was
//! previously classified), and, if so, ASdb returns the cached data"
//! (§5.1). Organizations are identified without ground truth: by their
//! selected domain when one exists, otherwise by the normalized WHOIS name.

use asdb_model::{Domain, OrgName};
use asdb_obs::Counter;
use asdb_taxonomy::CategorySet;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The cache key: how ASdb recognizes "the same organization" across ASes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKey {
    /// Keyed by registrable domain (strongest identity signal).
    Domain(String),
    /// Keyed by normalized organization name.
    Name(String),
}

impl OrgKey {
    /// Derive a key from the available identity signals. `None` when the
    /// record has neither a domain nor a usable name.
    pub fn derive(domain: Option<&Domain>, name: &str) -> Option<OrgKey> {
        if let Some(d) = domain {
            return Some(OrgKey::Domain(d.registrable().as_str().to_owned()));
        }
        let normalized = OrgName::new(name).normalized();
        (!normalized.is_empty()).then_some(OrgKey::Name(normalized))
    }
}

/// A cached classification result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedResult {
    /// The classification.
    pub categories: CategorySet,
    /// Provenance note (stage name at classification time).
    pub provenance: String,
}

/// A serializable view of the cache's occupancy and reuse statistics —
/// the §5.1 "previously classified organization" signal, quantified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Organizations currently cached.
    pub entries: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results stored.
    pub inserts: u64,
    /// `hits / (hits + misses)`, 0 when no lookups happened.
    pub hit_rate: f64,
}

/// Thread-safe organization cache.
///
/// Lookup/store traffic is counted on shared [`Counter`]s so reuse across
/// same-org ASes (§5.1) is observable; the counters can be supplied by a
/// metrics registry via [`OrgCache::with_counters`] or default to private
/// ones.
#[derive(Debug, Default)]
pub struct OrgCache {
    map: RwLock<HashMap<OrgKey, CachedResult>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    inserts: Arc<Counter>,
}

impl OrgCache {
    /// Empty cache.
    pub fn new() -> OrgCache {
        OrgCache::default()
    }

    /// Empty cache whose hit/miss/insert counters are shared with a
    /// metrics registry.
    pub fn with_counters(
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        inserts: Arc<Counter>,
    ) -> OrgCache {
        OrgCache {
            map: RwLock::default(),
            hits,
            misses,
            inserts,
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &OrgKey) -> Option<CachedResult> {
        let hit = self.map.read().get(key).cloned();
        match hit {
            Some(r) => {
                self.hits.inc();
                Some(r)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Store a result.
    pub fn put(&self, key: OrgKey, result: CachedResult) {
        self.inserts.inc();
        self.map.write().insert(key, result);
    }

    /// Invalidate a key (ownership metadata changed, §5.3).
    pub fn invalidate(&self, key: &OrgKey) -> bool {
        self.map.write().remove(key).is_some()
    }

    /// Number of cached organizations.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drop everything (statistics counters are preserved).
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Results stored.
    pub fn inserts(&self) -> u64 {
        self.inserts.get()
    }

    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.get();
        let total = hits + self.misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Serializable occupancy + reuse statistics.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            entries: self.len() as u64,
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            hit_rate: self.hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;
    use asdb_taxonomy::Category;

    #[test]
    fn key_prefers_domain() {
        let d = Domain::new("www.acme.com").unwrap();
        let k = OrgKey::derive(Some(&d), "Acme Inc").unwrap();
        assert_eq!(k, OrgKey::Domain("acme.com".into()));
        let k = OrgKey::derive(None, "Acme Inc").unwrap();
        assert_eq!(k, OrgKey::Name("acme".into()));
        assert!(OrgKey::derive(None, "  ").is_none());
    }

    #[test]
    fn name_key_survives_variants() {
        // Same org, different legal-suffix spellings → same key.
        let a = OrgKey::derive(None, "Nortel Ridge Telecom LLC").unwrap();
        let b = OrgKey::derive(None, "Nortel Ridge Telecom").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn put_get_invalidate() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        assert!(cache.get(&key).is_none());
        cache.put(
            key.clone(),
            CachedResult {
                categories: CategorySet::single(Category::l2(known::isp())),
                provenance: "test".into(),
            },
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key).is_some());
        assert!(cache.invalidate(&key));
        assert!(!cache.invalidate(&key));
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_track_hits_misses_inserts() {
        let cache = OrgCache::new();
        let key = OrgKey::Name("acme".into());
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.put(
            key.clone(),
            CachedResult {
                categories: CategorySet::single(Category::l2(known::isp())),
                provenance: "test".into(),
            },
        );
        assert!(cache.get(&key).is_some());
        assert!(cache.get(&key).is_some());
        assert_eq!((cache.hits(), cache.misses(), cache.inserts()), (2, 1, 1));
        let rate = cache.hit_rate();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9, "rate = {rate}");
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.inserts, 1);
        // Snapshot round-trips through serde.
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let cache = OrgCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        assert_eq!(cache.snapshot().hit_rate, 0.0);
    }

    #[test]
    fn shared_counters_observe_traffic() {
        use asdb_obs::Counter;
        let hits = Arc::new(Counter::new());
        let misses = Arc::new(Counter::new());
        let inserts = Arc::new(Counter::new());
        let cache =
            OrgCache::with_counters(Arc::clone(&hits), Arc::clone(&misses), Arc::clone(&inserts));
        let key = OrgKey::Name("acme".into());
        let _ = cache.get(&key);
        cache.put(
            key.clone(),
            CachedResult {
                categories: CategorySet::new(),
                provenance: "t".into(),
            },
        );
        let _ = cache.get(&key);
        assert_eq!(hits.get(), 1);
        assert_eq!(misses.get(), 1);
        assert_eq!(inserts.get(), 1);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(OrgCache::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = OrgKey::Name(format!("org-{t}-{i}"));
                    c.put(
                        key.clone(),
                        CachedResult {
                            categories: CategorySet::new(),
                            provenance: "t".into(),
                        },
                    );
                    assert!(c.get(&key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 800);
    }
}
